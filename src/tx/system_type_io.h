// SystemType (de)serialization: the companion of schedule_io.h — a saved
// counterexample is only reproducible together with its system type.
//
// Format, line oriented ('#' comments, blank lines ignored):
//   object <name> <data-type> <initial-value>
//   txn <id>
//   access <id> x=<object-index> kind=read|write op=<code>,<arg>
// Transactions must appear parents-before-children with contiguous or
// gapped (ascending) child indices, as produced by the serializer.
#ifndef NESTEDTX_TX_SYSTEM_TYPE_IO_H_
#define NESTEDTX_TX_SYSTEM_TYPE_IO_H_

#include <string>

#include "tx/system_type.h"
#include "util/status.h"

namespace nestedtx {

std::string SystemTypeToText(const SystemType& st);
Result<SystemType> SystemTypeFromText(const std::string& text);

}  // namespace nestedtx

#endif  // NESTEDTX_TX_SYSTEM_TYPE_IO_H_
