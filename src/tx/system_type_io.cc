#include "tx/system_type_io.h"

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "tx/schedule_io.h"
#include "util/strings.h"

namespace nestedtx {

std::string SystemTypeToText(const SystemType& st) {
  std::ostringstream oss;
  for (ObjectId x = 0; x < st.NumObjects(); ++x) {
    const auto& info = st.Object(x);
    oss << "object " << info.name << ' ' << info.data_type << ' '
        << info.initial_value << '\n';
  }
  for (const TransactionId& t : st.AllTransactions()) {
    if (st.IsAccess(t)) {
      const auto& a = st.Access(t);
      oss << "access " << TransactionIdToText(t) << " x=" << a.object
          << " kind=" << AccessKindName(a.kind) << " op=" << a.op.code
          << ',' << a.op.arg << '\n';
    } else {
      oss << "txn " << TransactionIdToText(t) << '\n';
    }
  }
  return oss.str();
}

namespace {

Status BadLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument(StrCat("line ", line_no, ": ", why));
}

}  // namespace

Result<SystemType> SystemTypeFromText(const std::string& text) {
  SystemTypeBuilder b;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  size_t num_objects = 0;
  // Parser-side structure checks, so malformed input fails with a status
  // instead of tripping builder asserts.
  std::set<TransactionId> internal = {TransactionId::Root()};
  std::map<TransactionId, uint32_t> next_index;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "object") {
      std::string name, data_type;
      int64_t initial = 0;
      if (!(fields >> name >> data_type >> initial)) {
        return BadLine(line_no, "expected: object <name> <type> <initial>");
      }
      b.AddObject(name, data_type, initial);
      ++num_objects;
    } else if (kind == "txn" || kind == "access") {
      std::string id_text;
      if (!(fields >> id_text)) return BadLine(line_no, "missing txn id");
      Result<TransactionId> id = TransactionIdFromText(id_text);
      if (!id.ok()) return BadLine(line_no, id.status().message());
      if (id->IsRoot()) return BadLine(line_no, "T0 is implicit");
      const TransactionId parent = id->Parent();
      const uint32_t index = id->back();
      if (!internal.count(parent)) {
        return BadLine(line_no,
                       "parent not yet declared as an internal txn");
      }
      uint32_t& next = next_index[parent];
      if (index < next) {
        return BadLine(line_no, "child index out of order or duplicated");
      }
      next = index + 1;
      if (kind == "txn") {
        b.AddInternalAt(parent, index);
        internal.insert(*id);
        continue;
      }
      ObjectId object = 0;
      AccessKind access_kind = AccessKind::kWrite;
      OpDescriptor op;
      bool have_x = false, have_kind = false, have_op = false;
      std::string field;
      while (fields >> field) {
        if (field.rfind("x=", 0) == 0) {
          object = static_cast<ObjectId>(
              std::strtoul(field.c_str() + 2, nullptr, 10));
          have_x = true;
        } else if (field == "kind=read") {
          access_kind = AccessKind::kRead;
          have_kind = true;
        } else if (field == "kind=write") {
          access_kind = AccessKind::kWrite;
          have_kind = true;
        } else if (field.rfind("op=", 0) == 0) {
          const auto parts = Split(field.substr(3), ',');
          if (parts.size() != 2) {
            return BadLine(line_no, "op= wants <code>,<arg>");
          }
          op.code = static_cast<uint32_t>(
              std::strtoul(parts[0].c_str(), nullptr, 10));
          op.arg = std::strtoll(parts[1].c_str(), nullptr, 10);
          have_op = true;
        } else {
          return BadLine(line_no, StrCat("unexpected field '", field, "'"));
        }
      }
      if (!have_x || !have_kind || !have_op) {
        return BadLine(line_no, "access needs x=, kind=, op= fields");
      }
      if (object >= num_objects) {
        return BadLine(line_no, "access references unknown object");
      }
      b.AddAccessAt(parent, index, object, access_kind, op);
    } else {
      return BadLine(line_no, StrCat("unknown directive '", kind, "'"));
    }
  }
  SystemType st = b.Build();
  RETURN_IF_ERROR(st.Validate());
  return st;
}

}  // namespace nestedtx
