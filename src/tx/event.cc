#include "tx/event.h"

#include <ostream>
#include <sstream>
#include <tuple>

#include "util/strings.h"

namespace nestedtx {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kCreate:
      return "CREATE";
    case EventKind::kRequestCreate:
      return "REQUEST_CREATE";
    case EventKind::kRequestCommit:
      return "REQUEST_COMMIT";
    case EventKind::kCommit:
      return "COMMIT";
    case EventKind::kAbort:
      return "ABORT";
    case EventKind::kReportCommit:
      return "REPORT_COMMIT";
    case EventKind::kReportAbort:
      return "REPORT_ABORT";
    case EventKind::kInformCommitAt:
      return "INFORM_COMMIT_AT";
    case EventKind::kInformAbortAt:
      return "INFORM_ABORT_AT";
  }
  return "?";
}

bool Event::operator<(const Event& other) const {
  return std::tie(kind, txn, value, object) <
         std::tie(other.kind, other.txn, other.value, other.object);
}

std::string Event::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case EventKind::kRequestCommit:
    case EventKind::kReportCommit:
      oss << EventKindName(kind) << "(" << txn << "," << value << ")";
      break;
    case EventKind::kInformCommitAt:
    case EventKind::kInformAbortAt:
      oss << EventKindName(kind) << "(X" << object << ")OF(" << txn << ")";
      break;
    default:
      oss << EventKindName(kind) << "(" << txn << ")";
  }
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << e.ToString();
}

std::string ToString(const Schedule& schedule) {
  return Join(schedule, " ");
}

TransactionId TransactionOf(const Event& e) {
  switch (e.kind) {
    case EventKind::kCreate:
    case EventKind::kRequestCommit:
      return e.txn;
    case EventKind::kRequestCreate:
    case EventKind::kCommit:
    case EventKind::kAbort:
    case EventKind::kReportCommit:
    case EventKind::kReportAbort:
    case EventKind::kInformCommitAt:
    case EventKind::kInformAbortAt:
      return e.txn.IsRoot() ? TransactionId::Root() : e.txn.Parent();
  }
  return TransactionId::Root();
}

bool IsTransactionEvent(const Event& e, const TransactionId& t) {
  switch (e.kind) {
    case EventKind::kCreate:
    case EventKind::kRequestCommit:
      return e.txn == t;
    case EventKind::kRequestCreate:
    case EventKind::kReportCommit:
    case EventKind::kReportAbort:
      return !e.txn.IsRoot() && e.txn.Parent() == t;
    default:
      return false;
  }
}

bool IsBasicObjectEvent(const SystemType& st, const Event& e, ObjectId x) {
  if (e.kind != EventKind::kCreate && e.kind != EventKind::kRequestCommit) {
    return false;
  }
  return st.IsAccess(e.txn) && st.Access(e.txn).object == x;
}

bool IsLockingObjectEvent(const SystemType& st, const Event& e, ObjectId x) {
  if (e.kind == EventKind::kInformCommitAt ||
      e.kind == EventKind::kInformAbortAt) {
    return e.object == x;
  }
  return IsBasicObjectEvent(st, e, x);
}

Schedule ProjectTransaction(const Schedule& schedule,
                            const TransactionId& t) {
  Schedule out;
  for (const Event& e : schedule) {
    if (IsTransactionEvent(e, t)) out.push_back(e);
  }
  return out;
}

Schedule ProjectBasicObject(const SystemType& st, const Schedule& schedule,
                            ObjectId x) {
  Schedule out;
  for (const Event& e : schedule) {
    if (IsBasicObjectEvent(st, e, x)) out.push_back(e);
  }
  return out;
}

Schedule ProjectLockingObject(const SystemType& st, const Schedule& schedule,
                              ObjectId x) {
  Schedule out;
  for (const Event& e : schedule) {
    if (IsLockingObjectEvent(st, e, x)) out.push_back(e);
  }
  return out;
}

bool IsReturnEvent(const Event& e, const TransactionId& t) {
  return (e.kind == EventKind::kCommit || e.kind == EventKind::kAbort) &&
         e.txn == t;
}

bool IsReportEvent(const Event& e, const TransactionId& t) {
  return (e.kind == EventKind::kReportCommit ||
          e.kind == EventKind::kReportAbort) &&
         e.txn == t;
}

}  // namespace nestedtx
