// Replicated directory service: quorum replication on nested
// transactions, with a copy failing and recovering mid-run.
//
// The paper's research program includes "replicated data management
// algorithms" in the same nested-transaction framework; this example
// shows why the combination is natural — each copy access is a
// subtransaction, so a dead copy aborts only its own call and the quorum
// logic simply moves on.
//
// Usage: ./build/examples/replicated_directory
#include <cstdio>

#include "core/replicated.h"
#include "util/strings.h"

using namespace nestedtx;

namespace {

void PrintEntry(Database& db, ReplicatedKV& dir, const std::string& name) {
  (void)db.RunTransaction(5, [&](Transaction& t) -> Status {
    auto v = dir.Get(t, name);
    if (!v.ok()) return v.status();
    if (v->has_value()) {
      std::printf("  %-10s -> port %lld\n", name.c_str(),
                  (long long)**v);
    } else {
      std::printf("  %-10s -> (absent)\n", name.c_str());
    }
    return Status::OK();
  });
}

}  // namespace

int main() {
  Database db;
  ReplicatedKV dir(&db, ReplicationOptions{3, 2, 2});

  std::printf("== register services (3 copies, R=2, W=2) ==\n");
  for (auto [name, port] : {std::pair{"auth", 7001}, {"billing", 7002},
                            {"search", 7003}}) {
    Status s = db.RunTransaction(5, [&, name = std::string(name),
                                     port = port](Transaction& t) {
      return dir.Put(t, name, port);
    });
    std::printf("  register %-10s %s\n", name, s.ToString().c_str());
  }

  std::printf("\n== copy 1 goes down; reads and writes continue ==\n");
  dir.SetCopyAvailable(1, false);
  PrintEntry(db, dir, "auth");
  Status s = db.RunTransaction(5, [&](Transaction& t) {
    return dir.Put(t, "search", 7004);  // re-registration on 2 copies
  });
  std::printf("  re-register search -> 7004: %s\n", s.ToString().c_str());

  std::printf("\n== copy 1 back, copy 2 down: latest version still wins "
              "==\n");
  dir.SetCopyAvailable(1, true);
  dir.SetCopyAvailable(2, false);
  PrintEntry(db, dir, "search");  // copy 1 is stale; version order fixes it
  PrintEntry(db, dir, "billing");

  std::printf("\n== two copies down: quorum unreachable, calls abort "
              "cleanly ==\n");
  dir.SetCopyAvailable(0, false);
  Status fail = db.RunTransaction(1, [&](Transaction& t) {
    return dir.Put(t, "auth", 9999);
  });
  std::printf("  register attempt: %s\n", fail.ToString().c_str());
  dir.SetCopyAvailable(0, true);
  dir.SetCopyAvailable(2, true);
  PrintEntry(db, dir, "auth");  // unchanged

  std::printf("\nstats: %s\n", db.stats().ToString().c_str());
  return 0;
}
