// Quickstart: the nested-transaction key-value engine in five minutes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/database.h"

using nestedtx::CcMode;
using nestedtx::Database;
using nestedtx::EngineOptions;
using nestedtx::Status;
using nestedtx::Transaction;

int main() {
  // 1. Open a database. Concurrency control defaults to Moss's nested
  //    read/write locking — the algorithm whose correctness the paper
  //    proves (PODS '87, Fekete/Lynch/Merritt/Weihl).
  EngineOptions options;
  options.cc_mode = CcMode::kMossRW;
  Database db(options);

  // 2. A top-level transaction: reads and writes under two-phase locks.
  {
    auto txn = db.Begin();
    txn->Put("alice", 100).ok();
    txn->Put("bob", 50).ok();
    Status s = txn->Commit();
    std::printf("setup commit: %s\n", s.ToString().c_str());
  }

  // 3. Nesting: subtransactions can fail and be retried without tearing
  //    down the parent — the "spheres of control" the paper's intro
  //    motivates. Locks a child acquires pass to the parent on commit.
  {
    auto txn = db.Begin();

    // First subtransaction: moves 30 from alice to bob and commits.
    {
      auto sub = txn->BeginChild();
      (*sub)->Add("alice", -30);
      (*sub)->Add("bob", 30);
      (*sub)->Commit().ok();
    }

    // Second subtransaction: starts a bad transfer, then aborts. Its
    // writes vanish; the first subtransaction's work is untouched.
    {
      auto sub = txn->BeginChild();
      (*sub)->Add("alice", -9999);
      (*sub)->Abort().ok();  // partial abort!
    }

    auto alice = txn->Get("alice");
    std::printf("inside txn after partial abort: alice=%lld\n",
                static_cast<long long>(*alice));  // 70

    txn->Commit().ok();
  }

  // 4. Committed state.
  std::printf("committed: alice=%lld bob=%lld\n",
              static_cast<long long>(db.ReadCommitted("alice").value()),
              static_cast<long long>(db.ReadCommitted("bob").value()));

  // 5. The retry helper: body runs as a transaction, deadlock victims are
  //    retried automatically.
  Status s = db.RunTransaction(5, [](Transaction& t) -> Status {
    auto r = t.Add("bob", 1);
    return r.ok() ? Status::OK() : r.status();
  });
  std::printf("retrying txn: %s, bob=%lld\n", s.ToString().c_str(),
              static_cast<long long>(db.ReadCommitted("bob").value()));

  std::printf("stats: %s\n", db.stats().ToString().c_str());
  return 0;
}
