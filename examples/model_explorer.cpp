// Model explorer: drive the paper's formal model end-to-end.
//
// 1. Runs the canonical R/W Locking system (transaction automata +
//    M(X) objects + generic scheduler) to quiescence under a random
//    schedule and prints the concurrent schedule.
// 2. Builds the Lemma 33 witness — a serial schedule write-equivalent to
//    visible(alpha, T0) — and prints it next to the original.
// 3. Exhaustively enumerates every schedule of a tiny system and checks
//    Theorem 34 on each.
//
// Usage: ./build/examples/model_explorer [seed]
#include <cstdio>
#include <cstdlib>

#include "checker/serial_correctness.h"
#include "explore/enumerator.h"
#include "explore/random_walk.h"
#include "explore/workload.h"
#include "locking/locking_system.h"
#include "serial/data_type.h"
#include "tx/visibility.h"

using namespace nestedtx;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // ---- Part 1: one concurrent run of the canonical system. ----
  SystemType st = MakeCanonicalSystemType();
  auto run = RandomLockingRun(st, seed);
  if (!run.ok()) {
    std::printf("run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("== concurrent schedule (seed %llu, %zu events) ==\n",
              (unsigned long long)seed, run->size());
  for (size_t i = 0; i < run->size(); ++i) {
    std::printf("  %3zu  %s\n", i, (*run)[i].ToString().c_str());
  }

  // ---- Part 2: the Lemma 33 witness for T0. ----
  SerialWitnessBuilder builder(&st);
  for (const Event& e : *run) builder.Feed(e).ok();
  auto witness = builder.WitnessFor(TransactionId::Root());
  if (!witness.ok()) {
    std::printf("witness failed: %s\n", witness.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n== serial witness for T0 (%zu events, write-equivalent to "
      "visible(alpha,T0)) ==\n",
      witness->size());
  for (size_t i = 0; i < witness->size(); ++i) {
    std::printf("  %3zu  %s\n", i, (*witness)[i].ToString().c_str());
  }
  Status verdict = CheckSeriallyCorrect(st, *run, TransactionId::Root());
  std::printf("\nserial correctness at T0: %s\n",
              verdict.ToString().c_str());

  // ---- Part 3: exhaustive check of a tiny system. ----
  SystemTypeBuilder b;
  const ObjectId x = b.AddObject("x", "counter");
  const TransactionId t1 = b.AddInternal(TransactionId::Root());
  b.AddAccess(t1, x, AccessKind::kRead, {ops::kRead, 0});
  const TransactionId t2 = b.AddInternal(TransactionId::Root());
  b.AddAccess(t2, x, AccessKind::kWrite, {ops::kAdd, 1});
  SystemType tiny = b.Build();

  size_t violations = 0;
  LockingSystemOptions tiny_sys;
  tiny_sys.scheduler.allow_spontaneous_aborts = false;
  SystemFactory factory = [&]() {
    auto s = MakeLockingSystem(tiny, tiny_sys);
    return std::move(*s);
  };
  ScheduleVisitor visitor = [&](const Schedule& alpha) {
    if (!CheckSeriallyCorrectForAll(tiny, alpha, {}).ok()) ++violations;
    return Status::OK();
  };
  EnumeratorOptions enum_opts;
  enum_opts.max_schedules = 5000;  // bounded-exhaustive DFS prefix
  auto stats = EnumerateSchedules(factory, visitor, enum_opts);
  if (!stats.ok()) {
    std::printf("enumeration failed: %s\n",
                stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n== %s check: %zu maximal schedules enumerated, %zu "
      "Theorem-34 violations ==\n",
      stats->exhausted ? "exhaustive" : "bounded-exhaustive",
      stats->schedules_visited, violations);
  return verdict.ok() && violations == 0 ? 0 : 1;
}
