// Argus-style services: remote procedure calls as subtransactions.
//
// The paper places Moss's algorithm in context: it is "the basis of data
// management in the Argus system", where a service call is a
// subtransaction that may abort independently of its caller. This example
// reconstructs that pattern: a travel-booking coordinator calls a flight
// service and a hotel service; each call is a subtransaction. A hotel
// with no rooms aborts its subtransaction only — the coordinator falls
// back to the next hotel while the already-booked flight leg's locks and
// updates stay intact.
//
// Usage: ./build/examples/argus_services
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/database.h"
#include "util/random.h"
#include "util/strings.h"

using namespace nestedtx;

namespace {

// "Remote" flight service: decrement seat inventory.
Status FlightService(Transaction& call, const std::string& flight) {
  auto seats = call.Get(StrCat("flight/", flight, "/seats"));
  if (!seats.ok()) return seats.status();
  if (*seats <= 0) return Status::Aborted("flight full");
  auto r = call.Add(StrCat("flight/", flight, "/seats"), -1);
  if (!r.ok()) return r.status();
  auto b = call.Add("bookings/flights", 1);
  return b.ok() ? Status::OK() : b.status();
}

// "Remote" hotel service: decrement room inventory.
Status HotelService(Transaction& call, const std::string& hotel) {
  auto rooms = call.Get(StrCat("hotel/", hotel, "/rooms"));
  if (!rooms.ok()) return rooms.status();
  if (*rooms <= 0) return Status::Aborted("hotel full");
  auto r = call.Add(StrCat("hotel/", hotel, "/rooms"), -1);
  if (!r.ok()) return r.status();
  auto b = call.Add("bookings/hotels", 1);
  return b.ok() ? Status::OK() : b.status();
}

// The coordinator: one top-level transaction per trip. Each service call
// runs as a subtransaction ("once-only" RPC semantics); hotel fallback
// exercises independent subtransaction abort.
Status BookTrip(Database& db, const std::string& flight,
                const std::vector<std::string>& hotel_preferences) {
  return db.RunTransaction(10, [&](Transaction& trip) -> Status {
    Status fs = Database::RunNested(trip, 3, [&](Transaction& call) {
      return FlightService(call, flight);
    });
    if (!fs.ok()) return Status::Aborted(StrCat("no flight: ", flight));

    for (const std::string& hotel : hotel_preferences) {
      Status hs = Database::RunNested(trip, 3, [&](Transaction& call) {
        return HotelService(call, hotel);
      });
      if (hs.ok()) return Status::OK();  // flight + hotel booked
      // This hotel's subtransaction aborted; the flight leg is untouched.
    }
    return Status::Aborted("no hotel available");  // aborts whole trip
  });
}

}  // namespace

int main() {
  Database db;  // Moss R/W locking
  db.Preload("flight/AA100/seats", 30);
  db.Preload("flight/UA200/seats", 25);
  db.Preload("hotel/plaza/rooms", 3);    // scarce: forces fallbacks
  db.Preload("hotel/budget/rooms", 60);
  db.Preload("bookings/flights", 0);
  db.Preload("bookings/hotels", 0);

  std::vector<std::thread> customers;
  std::atomic<int> booked{0}, rejected{0};
  for (int c = 0; c < 8; ++c) {
    customers.emplace_back([&, c] {
      Rng rng(c * 101 + 3);
      for (int trip = 0; trip < 8; ++trip) {
        const std::string flight = rng.Bernoulli(0.5) ? "AA100" : "UA200";
        Status s = BookTrip(db, flight, {"plaza", "budget"});
        (s.ok() ? booked : rejected).fetch_add(1);
      }
    });
  }
  for (auto& t : customers) t.join();

  std::printf("trips booked=%d rejected=%d\n", booked.load(),
              rejected.load());
  std::printf("flights booked:  %lld\n",
              (long long)db.ReadCommitted("bookings/flights").value());
  std::printf("hotels booked:   %lld\n",
              (long long)db.ReadCommitted("bookings/hotels").value());
  std::printf("plaza rooms left:  %lld (started 3)\n",
              (long long)db.ReadCommitted("hotel/plaza/rooms").value());
  std::printf("budget rooms left: %lld (started 60)\n",
              (long long)db.ReadCommitted("hotel/budget/rooms").value());
  std::printf("AA100 seats left:  %lld  UA200 seats left: %lld\n",
              (long long)db.ReadCommitted("flight/AA100/seats").value(),
              (long long)db.ReadCommitted("flight/UA200/seats").value());

  // Consistency: every booked trip consumed exactly one seat and one room.
  const long long flights_booked =
      db.ReadCommitted("bookings/flights").value();
  const long long hotels_booked = db.ReadCommitted("bookings/hotels").value();
  const long long seats_gone =
      (30 - db.ReadCommitted("flight/AA100/seats").value()) +
      (25 - db.ReadCommitted("flight/UA200/seats").value());
  const long long rooms_gone =
      (3 - db.ReadCommitted("hotel/plaza/rooms").value()) +
      (60 - db.ReadCommitted("hotel/budget/rooms").value());
  std::printf("consistency: flights %lld==%lld %s, hotels %lld==%lld %s\n",
              flights_booked, seats_gone,
              flights_booked == seats_gone ? "✓" : "✗", hotels_booked,
              rooms_gone, hotels_booked == rooms_gone ? "✓" : "✗");
  std::printf("stats: %s\n", db.stats().ToString().c_str());
  return booked.load() == (int)hotels_booked &&
                 flights_booked == seats_gone && hotels_booked == rooms_gone
             ? 0
             : 1;
}
