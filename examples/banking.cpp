// Banking under contention: many worker threads transfer money between
// accounts using nested transactions; deadlock victims retry only the
// failing subtree. Demonstrates invariant preservation (total balance is
// conserved) and prints engine statistics for each CC mode.
//
// Usage: ./build/examples/banking [threads] [transfers-per-thread]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/database.h"
#include "util/random.h"
#include "util/strings.h"

using namespace nestedtx;

namespace {

constexpr int kAccounts = 16;
constexpr int64_t kInitialBalance = 1000;

int64_t TotalBalance(Database& db) {
  int64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    total += db.ReadCommitted(StrCat("acct", i)).value_or(0);
  }
  return total;
}

void RunScenario(CcMode mode, int threads, int transfers_per_thread) {
  EngineOptions options;
  options.cc_mode = mode;
  options.lock_timeout = std::chrono::milliseconds(500);
  Database db(options);
  for (int i = 0; i < kAccounts; ++i) {
    db.Preload(StrCat("acct", i), kInitialBalance);
  }

  std::atomic<int> committed{0}, failed{0};
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(w * 7919 + 11);
      for (int i = 0; i < transfers_per_thread; ++i) {
        const std::string from = StrCat("acct", rng.Uniform(kAccounts));
        const std::string to = StrCat("acct", rng.Uniform(kAccounts));
        const int64_t amount = rng.UniformRange(1, 25);
        if (from == to) continue;
        // Each leg is a subtransaction: a deadlock on the second leg
        // retries only that leg, keeping the withdrawal's work.
        Status s = db.RunTransaction(20, [&](Transaction& t) -> Status {
          Status leg1 = Database::RunNested(t, 5, [&](Transaction& c) {
            auto bal = c.Get(from);
            if (!bal.ok()) return bal.status();
            if (*bal < amount) return Status::OK();  // insufficient: no-op
            auto r = c.Add(from, -amount);
            return r.ok() ? Status::OK() : r.status();
          });
          if (!leg1.ok()) return leg1;
          return Database::RunNested(t, 5, [&](Transaction& c) {
            auto r = c.Add(to, amount);
            return r.ok() ? Status::OK() : r.status();
          });
        });
        (s.ok() ? committed : failed).fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const int64_t total = TotalBalance(db);
  std::printf(
      "%-10s threads=%d transfers=%d committed=%d failed=%d "
      "throughput=%.0f txn/s total=%lld (%s)\n",
      CcModeName(mode), threads, threads * transfers_per_thread,
      committed.load(), failed.load(), committed.load() / secs,
      static_cast<long long>(total),
      total == kAccounts * kInitialBalance ? "conserved ✓" : "VIOLATED ✗");
  std::printf("           %s\n", db.stats().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 8;
  const int per_thread = argc > 2 ? std::atoi(argv[2]) : 500;
  std::printf("banking: %d accounts, initial total %lld\n\n", kAccounts,
              static_cast<long long>(kAccounts * kInitialBalance));
  for (CcMode mode : {CcMode::kMossRW, CcMode::kExclusive, CcMode::kFlat2PL,
                      CcMode::kSerial}) {
    RunScenario(mode, threads, per_thread);
  }
  return 0;
}
